package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// gateTolerance is the allowed relative regression of a gated ratio before
// the gate fails: 0.20 means a run may be up to 20% below baseline.
const gateTolerance = 0.20

// memBandwidthName is the memcpy-baseline benchmark every gated throughput
// is normalized against.
const memBandwidthName = "MemBandwidth"

// gatePrefix selects the benchmarks whose throughput is gated.
const gatePrefix = "EngineStream/"

// streamRatios extracts the machine-normalized throughput of every gated
// benchmark in doc: MB/s of each EngineStream sub-benchmark divided by the
// MB/s of the memcpy baseline measured in the same run. Dividing out the
// memcpy bandwidth cancels machine speed and most co-tenant noise, so the
// ratios are comparable across hosts — a CI runner is gated against a
// baseline recorded on a different machine.
// Runs recorded with -count N contribute N samples per benchmark; the best
// sample wins on both sides of the ratio, which filters out co-tenant
// noise troughs without averaging them in.
func streamRatios(doc *Document) (map[string]float64, error) {
	var membw float64
	best := map[string]float64{}
	for _, b := range doc.Benchmarks {
		if b.Name == memBandwidthName {
			membw = max(membw, b.Metrics["MB/s"])
		}
		if strings.HasPrefix(b.Name, gatePrefix) {
			best[b.Name] = max(best[b.Name], b.Metrics["MB/s"])
		}
	}
	if membw <= 0 {
		return nil, fmt.Errorf("no %s MB/s in document (run with -bench 'EngineStream|MemBandwidth')", memBandwidthName)
	}
	ratios := map[string]float64{}
	for name, mbs := range best {
		if mbs <= 0 {
			return nil, fmt.Errorf("benchmark %s has no MB/s metric", name)
		}
		ratios[name] = mbs / membw
	}
	if len(ratios) == 0 {
		return nil, fmt.Errorf("no %s* benchmarks in document", gatePrefix)
	}
	return ratios, nil
}

// runGate compares the current run against the baseline document at path
// and returns an error describing every regression beyond gateTolerance.
// Every benchmark gated in the baseline must be present in the current
// run — silently losing coverage would wave future regressions through.
func runGate(doc *Document, baselinePath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base Document
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	baseRatios, err := streamRatios(&base)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	curRatios, err := streamRatios(doc)
	if err != nil {
		return fmt.Errorf("current run: %w", err)
	}

	names := make([]string, 0, len(baseRatios))
	for name := range baseRatios {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	fmt.Fprintf(os.Stderr, "perf gate (tolerance %.0f%%, ratio = MB/s ÷ memcpy MB/s):\n", gateTolerance*100)
	for _, name := range names {
		want := baseRatios[name]
		got, ok := curRatios[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: gated in baseline but missing from this run", name))
			continue
		}
		delta := (got - want) / want
		status := "ok"
		if got < want*(1-gateTolerance) {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: ratio %.4f is %.1f%% below baseline %.4f", name, got, -delta*100, want))
		}
		fmt.Fprintf(os.Stderr, "  %-28s baseline %.4f  current %.4f  (%+.1f%%)  %s\n", name, want, got, delta*100, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("stream throughput regressed beyond %.0f%%:\n  %s", gateTolerance*100, strings.Join(failures, "\n  "))
	}
	return nil
}
