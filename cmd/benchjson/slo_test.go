package main

import (
	"encoding/json"
	"testing"

	"ndetect/internal/obs"
)

// loadDoc builds a minimal healthy load document with one class whose
// latency histogram has count observations at around p99latency seconds.
func loadDoc(p99latency float64) obs.LoadDocument {
	h := obs.NewHistogram(nil)
	for i := 0; i < 100; i++ {
		h.Observe(p99latency / 2)
	}
	h.Observe(p99latency)
	c := obs.LoadClass{Name: "hot", Scheduled: 101, Requests: 101, Latency: h.Snapshot()}
	c.Stamp()
	return obs.LoadDocument{
		Schema:  obs.LoadSchema,
		Tag:     "test",
		Arrival: obs.ArrivalPoisson,
		Classes: []obs.LoadClass{c},
	}
}

func TestSLOGatePasses(t *testing.T) {
	doc := Document{Load: []obs.LoadDocument{loadDoc(0.01)}}
	if err := runSLOGate(&doc, defaultSLOP99); err != nil {
		t.Fatalf("healthy run failed the gate: %v", err)
	}
}

func TestSLOGateRequiresLoadDocuments(t *testing.T) {
	if err := runSLOGate(&Document{}, defaultSLOP99); err == nil {
		t.Fatal("gate passed with no load documents")
	}
}

func TestSLOGateFailsOnIdentityMismatch(t *testing.T) {
	ld := loadDoc(0.01)
	ld.IdentityMismatches = 1
	// Identity is gated even under deliberate overload.
	ld.DeliberateOverload = true
	doc := Document{Load: []obs.LoadDocument{ld}}
	if err := runSLOGate(&doc, defaultSLOP99); err == nil {
		t.Fatal("gate passed with an identity mismatch")
	}
}

func TestSLOGateFailsOn5xxEvenUnderOverload(t *testing.T) {
	ld := loadDoc(0.01)
	ld.DeliberateOverload = true
	ld.Classes[0].Errors5xx = 2
	doc := Document{Load: []obs.LoadDocument{ld}}
	if err := runSLOGate(&doc, defaultSLOP99); err == nil {
		t.Fatal("gate passed with non-shed 5xx")
	}
}

func TestSLOGateShedsOnlyFailSteadyState(t *testing.T) {
	ld := loadDoc(0.01)
	ld.Classes[0].Shed = 5
	doc := Document{Load: []obs.LoadDocument{ld}}
	if err := runSLOGate(&doc, defaultSLOP99); err == nil {
		t.Fatal("gate passed a steady-state run with sheds")
	}
	ld.DeliberateOverload = true
	doc = Document{Load: []obs.LoadDocument{ld}}
	if err := runSLOGate(&doc, defaultSLOP99); err != nil {
		t.Fatalf("deliberate-overload run failed on expected sheds: %v", err)
	}
}

func TestSLOGateFailsOnP99OverBudget(t *testing.T) {
	// p99 lands near 4s with a 2s budget: recomputed from the buckets,
	// the gate must fail the class.
	doc := Document{Load: []obs.LoadDocument{loadDoc(4.0)}}
	if err := runSLOGate(&doc, defaultSLOP99); err == nil {
		t.Fatal("gate passed a p99 over budget")
	}
}

func TestSLOGateFailsOnEmptyRun(t *testing.T) {
	ld := loadDoc(0.01)
	ld.Classes[0].Requests = 0
	ld.Classes[0].Latency = obs.HistogramSnapshot{}
	doc := Document{Load: []obs.LoadDocument{ld}}
	if err := runSLOGate(&doc, defaultSLOP99); err == nil {
		t.Fatal("gate passed a run with zero completed requests")
	}
}

// A v3 document merging a load summary round-trips, and a v2 document
// (no load field) still parses into the same struct — the schema bump is
// purely additive.
func TestDocumentV3RoundTripAndV2Compat(t *testing.T) {
	doc := Document{
		Tag:        "rt",
		Benchmarks: []Result{{Name: "EngineStream/x", Procs: 4, Iterations: 10, NsPerOp: 5, Metrics: map[string]float64{"MB/s": 100}}},
		Load:       []obs.LoadDocument{loadDoc(0.01)},
	}
	doc.stamp()
	if doc.Schema != BenchSchema || BenchSchema != "ndetect.bench/v3" {
		t.Fatalf("schema = %q", doc.Schema)
	}
	raw, err := json.Marshal(&doc)
	if err != nil {
		t.Fatal(err)
	}
	var back Document
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Load) != 1 || back.Load[0].Classes[0].Name != "hot" {
		t.Fatalf("load lost in round trip: %+v", back.Load)
	}
	// The embedded histogram buckets survive: quantiles recompute to the
	// stamped values.
	got := back.Load[0].Classes[0].Latency.Quantile(0.99)
	want := doc.Load[0].Classes[0].P99
	if got != want {
		t.Fatalf("recomputed p99 %v != stamped %v", got, want)
	}

	v2 := []byte(`{"schema":"ndetect.bench/v2","tag":"old","benchmarks":[{"name":"MemBandwidth","procs":1,"iterations":3,"ns_per_op":9,"metrics":{"MB/s":12000}}]}`)
	var old Document
	if err := json.Unmarshal(v2, &old); err != nil {
		t.Fatalf("v2 document no longer parses: %v", err)
	}
	if old.Tag != "old" || len(old.Benchmarks) != 1 || old.Load != nil {
		t.Fatalf("v2 parse: %+v", old)
	}
}
