// Command kiss2net synthesizes a KISS2 finite-state machine into the
// combinational gate-level netlist the analysis runs on (next-state and
// output logic with present-state lines exposed as inputs), and writes it
// in the text netlist format. It can also emit Graphviz DOT and print
// structural statistics.
//
// Usage:
//
//	kiss2net [-encoding binary|gray|one-hot] [-two-level] [-maxfanin N]
//	         [-o out.net] [-dot out.dot] [-stats] machine.kiss2
//
// With "-" as the file, the machine is read from stdin.
package main

import (
	"flag"
	"fmt"
	"os"

	"ndetect/internal/kiss"
	"ndetect/internal/synth"
)

func main() {
	var (
		encF   = flag.String("encoding", "binary", "state encoding: binary, gray, one-hot")
		twoF   = flag.Bool("two-level", false, "two-level PLA mapping instead of multi-level")
		mfF    = flag.Int("maxfanin", 4, "fanin cap for multi-level mapping")
		outF   = flag.String("o", "", "output netlist file (default stdout)")
		dotF   = flag.String("dot", "", "also write Graphviz DOT to this file")
		statsF = flag.Bool("stats", false, "print structural statistics to stderr")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: kiss2net [flags] machine.kiss2  (see -h)")
		os.Exit(2)
	}

	path := flag.Arg(0)
	in := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	m, err := kiss.Parse(path, in)
	if err != nil {
		fail(err)
	}
	if err := m.CheckDeterministic(); err != nil {
		fail(fmt.Errorf("machine is not deterministic: %w", err))
	}

	r, err := synth.Synthesize(m, synth.Options{
		EncodingStyle: *encF,
		MultiLevel:    !*twoF,
		MaxFanin:      *mfF,
	})
	if err != nil {
		fail(err)
	}

	out := os.Stdout
	if *outF != "" {
		f, err := os.Create(*outF)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		out = f
	}
	if err := r.Circuit.Write(out); err != nil {
		fail(err)
	}

	if *dotF != "" {
		f, err := os.Create(*dotF)
		if err != nil {
			fail(err)
		}
		if err := r.Circuit.WriteDOT(f); err != nil {
			fail(err)
		}
		f.Close()
	}
	if *statsF {
		fmt.Fprintf(os.Stderr, "%s: %d states (%d bits, %s encoding), %s\n",
			m.Name, m.NumStates(), r.StateBits, *encF, r.Circuit.ComputeStats())
		if un := m.CheckComplete(); un > 0 {
			fmt.Fprintf(os.Stderr, "%s: %d unspecified (state, input) pairs synthesize to 0\n", m.Name, un)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "kiss2net:", err)
	os.Exit(1)
}
