// Command ndetect-loadgen drives a running ndetectd with an open-loop
// mixed workload and emits an ndetect.load/v1 summary (DESIGN.md §15).
//
// The arrival schedule is precomputed from a seeded source — a pure
// function of (-arrival, -rate, -duration, -seed) — and every request
// fires at its scheduled offset regardless of how earlier requests are
// faring. Latency is measured from the scheduled arrival instant to the
// terminal outcome, so a stalling daemon shows up as queueing delay in
// the histogram instead of silently stretching the gaps between sends
// (coordinated omission). All wall-clock reads live behind obs.Pacer.
//
// Four workload classes exercise the daemon's distinct paths:
//
//	hot     POST /jobs, c17 worstcase — after the first completion this
//	        is a result-cache hit, the latency floor of the serving path
//	cold    POST /jobs, c17 average with a rotating seed — every request
//	        is a fresh analysis, then polled to completion
//	sweep   POST /sweeps, a small seed grid — the fan-out path
//	events  POST /jobs + GET /jobs/{id}/events — an SSE subscriber held
//	        open to the terminal event
//
// A sample of completed jobs is spot-checked for byte identity: the
// served result document must equal the one the in-process driver
// produces for the same request (§7). Any mismatch is a broken
// determinism contract; the process then exits 1. Admission sheds (503
// and 429) are counted separately from errors — under -deliberate-overload
// they are the expected outcome, and the SLO verdict is left to
// `benchjson -slo` over the emitted document.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ndetect/internal/circuit"
	"ndetect/internal/exp"
	"ndetect/internal/obs"
)

func main() {
	var (
		addr       = flag.String("addr", "http://127.0.0.1:8417", "ndetectd base URL")
		rate       = flag.Float64("rate", 20, "target arrival rate, requests/second")
		duration   = flag.Duration("duration", 10*time.Second, "arrival window")
		arrival    = flag.String("arrival", obs.ArrivalPoisson, "arrival process: poisson or fixed")
		seed       = flag.Int64("seed", 1, "schedule and mix seed")
		mix        = flag.String("mix", "hot=6,cold=2,sweep=1,events=1", "workload mix as class=weight[,...]")
		spotChecks = flag.Int("spot-check", 8, "byte-identity checks of served results against the in-process driver")
		client     = flag.String("client", "loadgen", "X-Ndetect-Client quota identity (empty: none)")
		tag        = flag.String("tag", "", "tag recorded in the load document")
		out        = flag.String("out", "", "write the ndetect.load/v1 JSON document here (default: stdout)")
		overload   = flag.Bool("deliberate-overload", false, "mark the run as intentionally exceeding admission capacity")
		timeout    = flag.Duration("timeout", 60*time.Second, "per-request completion deadline")
		coldK      = flag.Int("cold-k", 20, "K (test sets per n) of the cold class's average analyses — the per-job cost lever for overload runs")
	)
	flag.Parse()

	weights, order, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ndetect-loadgen: %v\n", err)
		os.Exit(2)
	}
	schedule := obs.ArrivalSchedule(*arrival, *rate, *duration, *seed)
	if len(schedule) == 0 {
		fmt.Fprintln(os.Stderr, "ndetect-loadgen: empty schedule (need positive -rate and -duration)")
		os.Exit(2)
	}

	g, err := newGolden()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ndetect-loadgen: golden setup: %v\n", err)
		os.Exit(2)
	}
	run := &runner{
		base:    strings.TrimRight(*addr, "/"),
		client:  *client,
		http:    &http.Client{Timeout: *timeout},
		golden:  g,
		checks:  int64(*spotChecks),
		timeout: *timeout,
		coldK:   *coldK,
		stats:   make(map[string]*classStats, len(order)),
	}
	for _, name := range order {
		run.stats[name] = &classStats{latency: obs.NewHistogram(nil)}
	}

	// Assign a class to each arrival up front, from its own seeded stream:
	// the (offset, class) pairs are a pure function of the flags.
	classes := make([]string, len(schedule))
	rng := rand.New(rand.NewSource(*seed + 1))
	total := 0
	for _, name := range order {
		total += weights[name]
	}
	for i := range schedule {
		pick := rng.Intn(total)
		for _, name := range order {
			if pick -= weights[name]; pick < 0 {
				classes[i] = name
				break
			}
		}
		run.stats[classes[i]].scheduled.Add(1)
	}

	pacer := obs.StartPacer()
	var wg sync.WaitGroup
	for i, offset := range schedule {
		wg.Add(1)
		go func(i int, offset time.Duration, class string) {
			defer wg.Done()
			pacer.Sleep(offset)
			run.fire(pacer, offset, class, i)
		}(i, offset, classes[i])
	}
	wg.Wait()
	elapsed := pacer.Elapsed().Seconds()

	doc := obs.LoadDocument{
		Schema:             obs.LoadSchema,
		Tag:                *tag,
		Target:             run.base,
		Arrival:            *arrival,
		Seed:               *seed,
		TargetRPS:          *rate,
		DurationSeconds:    elapsed,
		IdentityChecks:     run.identityChecks.Load(),
		IdentityMismatches: run.identityMismatches.Load(),
		DeliberateOverload: *overload,
	}
	var done int64
	for _, name := range order {
		s := run.stats[name]
		c := obs.LoadClass{
			Name:      name,
			Scheduled: s.scheduled.Load(),
			Requests:  s.requests.Load(),
			Shed:      s.shed.Load(),
			Errors5xx: s.errors5xx.Load(),
			Errors:    s.errors.Load(),
			Latency:   s.latency.Snapshot(),
		}
		c.Stamp()
		done += c.Requests
		doc.Classes = append(doc.Classes, c)
	}
	obs.SortClasses(doc.Classes)
	if elapsed > 0 {
		doc.AchievedRPS = float64(done) / elapsed
	}

	fmt.Fprint(os.Stderr, obs.FormatLoadTable(&doc))
	payload, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ndetect-loadgen: encode: %v\n", err)
		os.Exit(2)
	}
	payload = append(payload, '\n')
	if *out == "" {
		os.Stdout.Write(payload)
	} else if err := os.WriteFile(*out, payload, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "ndetect-loadgen: %v\n", err)
		os.Exit(2)
	}
	if doc.IdentityMismatches > 0 {
		fmt.Fprintf(os.Stderr, "ndetect-loadgen: %d identity mismatches — served results differ from the in-process driver\n",
			doc.IdentityMismatches)
		os.Exit(1)
	}
}

// parseMix parses "hot=6,cold=2,sweep=1,events=1" into weights, keeping
// the declared order for deterministic weighted picks.
func parseMix(spec string) (map[string]int, []string, error) {
	weights := map[string]int{}
	var order []string
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		name, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, nil, fmt.Errorf("mix field %q: want class=weight", field)
		}
		switch name {
		case "hot", "cold", "sweep", "events":
		default:
			return nil, nil, fmt.Errorf("unknown class %q (want hot, cold, sweep or events)", name)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, nil, fmt.Errorf("mix weight %q: want a non-negative integer", val)
		}
		if _, dup := weights[name]; dup {
			return nil, nil, fmt.Errorf("class %q repeated", name)
		}
		if w == 0 {
			continue
		}
		weights[name] = w
		order = append(order, name)
	}
	if len(order) == 0 {
		return nil, nil, fmt.Errorf("empty mix %q", spec)
	}
	return weights, order, nil
}

// classStats accumulates one class's outcome counters; the latency
// histogram is internally atomic.
type classStats struct {
	scheduled, requests, shed, errors5xx, errors atomic.Int64
	latency                                      *obs.Histogram
}

type runner struct {
	base    string
	client  string
	http    *http.Client
	golden  *golden
	timeout time.Duration
	coldK   int
	stats   map[string]*classStats

	checks             int64 // spot-check budget
	spotChecked        atomic.Int64
	identityChecks     atomic.Int64
	identityMismatches atomic.Int64
}

// fire runs one scheduled arrival to its terminal outcome and records
// the open-loop latency: pacer-elapsed minus the scheduled offset.
func (r *runner) fire(p *obs.Pacer, offset time.Duration, class string, i int) {
	s := r.stats[class]
	outcome := r.drive(class, i)
	s.requests.Add(1)
	switch outcome {
	case outcomeOK:
		s.latency.Observe((p.Elapsed() - offset).Seconds())
	case outcomeShed:
		s.shed.Add(1)
	case outcome5xx:
		s.errors5xx.Add(1)
	default:
		s.errors.Add(1)
	}
}

type outcome int

const (
	outcomeOK outcome = iota
	outcomeShed
	outcome5xx
	outcomeErr
)

// Per-class request bodies. Seeds rotate per arrival index within
// disjoint ranges so cold/sweep/events never collide on a job identity
// (a collision would coalesce and measure the cache, not the analysis).
func (r *runner) drive(class string, i int) outcome {
	switch class {
	case "hot":
		return r.runJob(`{"benchmark":"c17","analysis":"worstcase"}`, &exp.AnalysisRequest{Kind: exp.WorstCaseAnalysis})
	case "cold":
		seed := int64(1_000 + i)
		body := fmt.Sprintf(`{"benchmark":"c17","analysis":"average","options":{"nmax":2,"k":%d,"seed":%d}}`, r.coldK, seed)
		return r.runJob(body, &exp.AnalysisRequest{Kind: exp.AverageAnalysis, NMax: 2, K: r.coldK, Seed: seed})
	case "sweep":
		seed := int64(1_000_000 + 4*i)
		body := fmt.Sprintf(`{"benchmark":"c17","sweep":"nmax=2;k=20;seed=%d,%d,%d"}`, seed, seed+1, seed+2)
		return r.runSweep(body)
	case "events":
		seed := int64(2_000_000 + i)
		body := fmt.Sprintf(`{"benchmark":"c17","analysis":"average","options":{"nmax":2,"k":20,"seed":%d}}`, seed)
		return r.runEvents(body)
	}
	return outcomeErr
}

func (r *runner) post(path, body string) (*http.Response, error) {
	req, err := http.NewRequest("POST", r.base+path, strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if r.client != "" {
		req.Header.Set("X-Ndetect-Client", r.client)
	}
	return r.http.Do(req)
}

// classify maps an HTTP status to a terminal outcome: 503 and 429 are
// admission sheds, other 5xx are server errors, anything else
// unexpected is a client-visible error.
func classify(status int) outcome {
	switch {
	case status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests:
		return outcomeShed
	case status >= 500:
		return outcome5xx
	default:
		return outcomeErr
	}
}

// submitResponse is the slice of the daemon's POST /jobs reply the
// harness needs.
type submitResponse struct {
	ID     string `json:"id"`
	Status string `json:"status"`
}

// runJob submits one analysis and polls it to completion; golden is the
// in-process identity of the request for spot checks (nil: skip).
func (r *runner) runJob(body string, ident *exp.AnalysisRequest) outcome {
	resp, err := r.post("/jobs", body)
	if err != nil {
		return outcomeErr
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		io.Copy(io.Discard, resp.Body)
		return classify(resp.StatusCode)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return outcomeErr
	}
	return r.pollResult(sub.ID, ident)
}

// pollResult polls GET /jobs/{id}/result until the job is terminal,
// spot-checking the served bytes when a check budget remains.
func (r *runner) pollResult(id string, ident *exp.AnalysisRequest) outcome {
	deadline := time.Now().Add(r.timeout) // ndetect:allow(detrand): harness deadline, not a result input
	for {
		resp, err := r.http.Get(r.base + "/jobs/" + id + "/result")
		if err != nil {
			return outcomeErr
		}
		switch resp.StatusCode {
		case http.StatusOK:
			served, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return outcomeErr
			}
			if ident != nil && r.spotChecked.Add(1) <= r.checks {
				r.check(served, ident)
			}
			return outcomeOK
		case http.StatusAccepted:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if time.Now().After(deadline) { // ndetect:allow(detrand): harness deadline
				return outcomeErr
			}
			time.Sleep(5 * time.Millisecond)
		default:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return classify(resp.StatusCode)
		}
	}
}

// check compares served result bytes against the in-process driver's
// document for the same request — the §7 identity contract, observed
// end to end through the serving stack.
func (r *runner) check(served []byte, ident *exp.AnalysisRequest) {
	r.identityChecks.Add(1)
	want, err := r.golden.bytes(ident)
	if err != nil || !bytes.Equal(served, want) {
		r.identityMismatches.Add(1)
	}
}

// runSweep submits a variant grid and polls every job it fans out to.
func (r *runner) runSweep(body string) outcome {
	resp, err := r.post("/sweeps", body)
	if err != nil {
		return outcomeErr
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		io.Copy(io.Discard, resp.Body)
		return classify(resp.StatusCode)
	}
	var sweep struct {
		Jobs []submitResponse `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sweep); err != nil || len(sweep.Jobs) == 0 {
		return outcomeErr
	}
	for _, j := range sweep.Jobs {
		if out := r.pollResult(j.ID, nil); out != outcomeOK {
			return out
		}
	}
	return outcomeOK
}

// runEvents submits a job and consumes its SSE stream to the terminal
// state event — the subscriber path under load.
func (r *runner) runEvents(body string) outcome {
	resp, err := r.post("/jobs", body)
	if err != nil {
		return outcomeErr
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return classify(resp.StatusCode)
	}
	var sub submitResponse
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil {
		return outcomeErr
	}
	stream, err := r.http.Get(r.base + "/jobs/" + sub.ID + "/events")
	if err != nil {
		return outcomeErr
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		io.Copy(io.Discard, stream.Body)
		return classify(stream.StatusCode)
	}
	// Scan SSE data lines for the terminal state event. The stream ends
	// server-side after it, so EOF without one is an error.
	dec := newSSEData(stream.Body)
	for {
		data, err := dec.next()
		if err != nil {
			return outcomeErr
		}
		var ev struct {
			Type string `json:"type"`
			Info *struct {
				Status string `json:"status"`
			} `json:"info"`
		}
		if json.Unmarshal(data, &ev) != nil {
			continue
		}
		if ev.Type == "state" && ev.Info != nil {
			switch ev.Info.Status {
			case "done":
				return outcomeOK
			case "failed":
				return outcomeErr
			}
		}
	}
}

// sseData yields the data: payload of each SSE event.
type sseData struct {
	buf  []byte
	body io.Reader
	err  error
}

func newSSEData(body io.Reader) *sseData { return &sseData{body: body} }

func (s *sseData) next() ([]byte, error) {
	for {
		if i := bytes.IndexByte(s.buf, '\n'); i >= 0 {
			line := bytes.TrimRight(s.buf[:i], "\r")
			s.buf = s.buf[i+1:]
			if data, ok := bytes.CutPrefix(line, []byte("data: ")); ok {
				return data, nil
			}
			continue
		}
		if s.err != nil {
			return nil, s.err
		}
		chunk := make([]byte, 4096)
		n, err := s.body.Read(chunk)
		s.buf = append(s.buf, chunk[:n]...)
		s.err = err
	}
}

// golden computes reference result documents with the in-process driver
// — the same pure function the daemon runs — memoized per identity.
type golden struct {
	c17 *circuit.Circuit

	mu    sync.Mutex
	cache map[string][]byte
}

func newGolden() (*golden, error) {
	c, err := circuit.EmbeddedBench("c17")
	if err != nil {
		return nil, err
	}
	return &golden{c17: c, cache: make(map[string][]byte)}, nil
}

func (g *golden) bytes(req *exp.AnalysisRequest) ([]byte, error) {
	key := fmt.Sprintf("%s/%d/%d/%d", req.Kind, req.NMax, req.K, req.Seed)
	g.mu.Lock()
	cached, ok := g.cache[key]
	g.mu.Unlock()
	if ok {
		return cached, nil
	}
	doc, err := exp.AnalyzeCircuit(g.c17, *req)
	if err != nil {
		return nil, err
	}
	encoded := doc.Encode()
	g.mu.Lock()
	g.cache[key] = encoded
	g.mu.Unlock()
	return encoded, nil
}
