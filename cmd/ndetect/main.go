// Command ndetect analyses one circuit: it builds the paper's fault
// universes (collapsed stuck-at targets, four-way bridging untargeted
// faults), runs the worst-case nmin analysis and optionally the
// average-case Procedure 1 estimate, and prints a summary.
//
// The circuit comes from one of:
//
//	-bench NAME     an embedded benchmark: an FSM surrogate or an ISCAS
//	                .bench sample like c17 or w64 (see -list)
//	-netlist FILE   a circuit file; -format selects the syntax:
//	                "net" (default, circuit/input/output/gate statements)
//	                or "bench" (ISCAS-85/89 .bench, DFFs stripped)
//	-kiss2 FILE     a KISS2 FSM, synthesized first
//
// Circuits too wide for exhaustive analysis (> sim.MaxInputs inputs) can
// be analysed with -partition MAXINPUTS, which splits the circuit into
// output cones of at most MAXINPUTS inputs, analyses every part, and
// merges the per-part worst-case verdicts (the paper's Section 4
// workaround; see DESIGN.md §8 for what the merged numbers mean).
//
// Kernel work is measurable without editing code: -cpuprofile and
// -memprofile write pprof profiles of the run (the heap profile of a
// streaming analysis shows per-fault result bitsets, never per-node
// universes), and -trace prints a stage-timing table to stderr — stdout
// stays byte-identical with or without it (DESIGN.md §14).
//
// -json swaps the text report for the machine-readable analysis document
// (internal/report.Analysis) — the same encoder the ndetectd server uses,
// so CLI and daemon outputs diff clean for the same circuit and options.
//
// -sweep SPEC runs a whole grid of result-identity option variants over
// the circuit with one shared exhaustive universe (DESIGN.md §11),
// printing each variant's -json document in grid order — each
// byte-identical to the one-shot run with the same options. The spec is
// semicolon-separated key=values with comma lists and lo..hi ranges,
// e.g. "nmax=10;k=1000;seed=1..5;def=1,2".
//
// -store-dir DIR makes -json and -sweep runs warm-startable: the
// exhaustive universe (T-sets + fault tables) is loaded from / saved to
// the same persistent artifact store ndetectd uses, so repeated runs over
// one circuit skip simulation and T-set construction.
//
// -fault-model ID swaps the paper's stuck-at + bridging setup for another
// registered fault model (DESIGN.md §12): "transition" analyses gross-delay
// transition faults over two-pattern tests (the universe indexes ordered
// vector pairs), "msa2" analyses pairwise double stuck-at faults. The model
// is part of the result identity, so -json documents, job IDs and universe
// artifacts are all model-tagged.
//
// Examples:
//
//	ndetect -bench bbara
//	ndetect -bench bbtas -fault-model transition
//	ndetect -bench bbtas -fault-model msa2 -json
//	ndetect -bench bbtas -json
//	ndetect -bench dvram -hist 100
//	ndetect -netlist adder.net -avg -k 500
//	ndetect -netlist c880.bench -format bench -partition 16
//	ndetect -bench w64 -partition 16 -workers 8
//	ndetect -bench dvram -cpuprofile cpu.pprof -memprofile mem.pprof
//	ndetect -bench bbtas -sweep "nmax=10;k=200;seed=1..5" -store-dir ./artifacts
//	ndetect -kiss2 machine.kiss2 -avg
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"ndetect/internal/bench"
	"ndetect/internal/circuit"
	"ndetect/internal/exp"
	"ndetect/internal/fault"
	"ndetect/internal/kiss"
	"ndetect/internal/ndetect"
	"ndetect/internal/obs"
	"ndetect/internal/partition"
	"ndetect/internal/report"
	"ndetect/internal/store"
	"ndetect/internal/synth"
)

func main() {
	var (
		benchF   = flag.String("bench", "", "embedded benchmark name")
		netF     = flag.String("netlist", "", "netlist file")
		formatF  = flag.String("format", "net", `syntax of the -netlist file: "net" or "bench" (ISCAS .bench)`)
		kissF    = flag.String("kiss2", "", "KISS2 FSM file (synthesized before analysis)")
		listF    = flag.Bool("list", false, "list embedded benchmarks and exit")
		avgF     = flag.Bool("avg", false, "also run the average-case analysis (Procedure 1)")
		def2F    = flag.Bool("def2", false, "use Definition 2 in the average-case analysis")
		kF       = flag.Int("k", 1000, "test sets per n for -avg")
		nmaxF    = flag.Int("nmax", 10, "deepest n-detection level")
		seedF    = flag.Int64("seed", 1, "RNG seed for -avg")
		histF    = flag.Int("hist", 0, "print the nmin histogram from this cutoff (0 = off)")
		worstF   = flag.Int("worst", 10, "show the hardest N untargeted faults")
		partF    = flag.Int("partition", 0, "partition into ≤N-input cones before analysis (0 = off)")
		modelF   = flag.String("fault-model", "", `fault model for the analysis: "" = the default (collapsed stuck-at targets, four-way bridging untargeted faults), or a registered model like "transition" (two-pattern delay faults) or "msa2" (pairwise double stuck-at); part of the result identity (DESIGN.md §12)`)
		jsonF    = flag.Bool("json", false, "emit the machine-readable analysis document instead of text (byte-identical to the ndetectd server's result for the same circuit and options)")
		sweepF   = flag.String("sweep", "", `run a grid of option variants over one shared universe and print each variant's JSON document, e.g. "nmax=10;k=1000;seed=1..5;def=1,2" (DESIGN.md §11)`)
		storeF   = flag.String("store-dir", "", "persistent artifact store for -json/-sweep universe reuse (same layout as ndetectd's; DESIGN.md §11)")
		ge11F    = flag.Int("ge11", 0, "with -json -avg: cap the analysed nmin subset by even sampling (0 = no cap; DESIGN.md §4)")
		twoLevel = flag.Bool("two-level", false, "use two-level PLA synthesis for -kiss2/-bench")
		workersF = flag.Int("workers", 0, "worker pool size for simulation, T-sets and -avg (0 = one per CPU, 1 = serial)")
		traceF   = flag.Bool("trace", false, "print a stage-timing table to stderr after the analysis (stdout bytes are unchanged; DESIGN.md §14)")
		cpuprofF = flag.String("cpuprofile", "", "write a CPU profile of the analysis to this file")
		memprofF = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	// Profiles are flushed both on normal returns (defer) and in fail()
	// before os.Exit, so a run stopped by e.g. the memory-budget check
	// still yields readable pprof data.
	if *cpuprofF != "" {
		f, err := os.Create(*cpuprofF)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
	}
	flushedProfiles := false
	flushProfiles = func() {
		if flushedProfiles {
			return // also breaks the fail() recursion from writeMemProfile
		}
		flushedProfiles = true
		if *cpuprofF != "" {
			pprof.StopCPUProfile()
		}
		if *memprofF != "" {
			writeMemProfile(*memprofF)
		}
	}
	defer flushProfiles()

	if *listF {
		for _, b := range bench.All() {
			src := "synthetic"
			if b.Handwritten {
				src = "handwritten"
			}
			fmt.Printf("%-10s %2d in, %2d out, %2d states (%s)\n", b.Name, b.Inputs, b.Outputs, b.States, src)
		}
		for _, name := range circuit.EmbeddedBenchNames() {
			c, err := circuit.EmbeddedBench(name)
			if err != nil {
				fail(err)
			}
			fmt.Printf("%-10s %2d in, %2d out (ISCAS .bench sample)\n", name, c.NumInputs(), c.NumOutputs())
		}
		return
	}

	c, err := loadCircuit(*benchF, *netF, *kissF, *formatF, *twoLevel)
	if err != nil {
		fail(err)
	}

	// -trace records stage spans and prints a timing table to stderr when
	// the analysis returns. It observes through the same hooks the server
	// uses (exp.TraceSink + the Progress stream), so stdout — text report
	// or JSON document alike — stays byte-identical with or without it.
	var rec *obs.Recorder
	if *traceF {
		if *sweepF != "" {
			fail(fmt.Errorf("-trace does not combine with -sweep (per-variant traces would interleave); trace the variants one-shot instead"))
		}
		rec = obs.NewRecorder()
		defer func() { fmt.Fprint(os.Stderr, obs.FormatTable(rec.Finish())) }()
	}

	// Resolve the fault model up front so an unknown ID fails before any
	// simulation. The partitioned pipeline is stuck-at-only (it merges
	// per-part nmin over bridge names), so it rejects a model override.
	model, err := fault.Resolve(*modelF)
	if err != nil {
		fail(fmt.Errorf("%v (registered models: %s)", err, strings.Join(fault.ModelIDs(), " ")))
	}
	if *modelF != "" && *partF > 0 {
		fail(fmt.Errorf("-fault-model does not combine with -partition (the partitioned pipeline is fixed to the default model)"))
	}

	// The artifact store backs -json and -sweep only: those paths analyze
	// the canonical circuit, which is what universe artifacts are keyed
	// and node-indexed by. The text report analyzes the circuit as parsed,
	// so combining it with -store-dir is an error rather than a silent
	// no-op.
	var universes exp.UniverseSource
	if *storeF != "" {
		if !*jsonF && *sweepF == "" {
			fail(fmt.Errorf("-store-dir applies to -json and -sweep runs only (the text report does not use the artifact store)"))
		}
		st, err := store.Open(*storeF, store.Options{})
		if err != nil {
			fail(err)
		}
		defer st.Close()
		universes = st
	}

	if *sweepF != "" {
		variants, err := exp.ParseSweep(*sweepF)
		if err != nil {
			fail(err)
		}
		if *modelF != "" {
			// The flag sets one model for the whole grid; a grid that also
			// crosses models must say so in the spec alone.
			for _, field := range strings.Split(*sweepF, ";") {
				if key, _, _ := strings.Cut(strings.TrimSpace(field), "="); strings.TrimSpace(key) == "model" {
					fail(fmt.Errorf("-fault-model conflicts with a model= axis in -sweep; use one or the other"))
				}
			}
			for i := range variants {
				variants[i].FaultModel = *modelF
				if err := variants[i].Normalize(); err != nil {
					fail(err)
				}
			}
		}
		docs, err := exp.Sweep(c, variants, exp.SweepOptions{Workers: *workersF, Universes: universes})
		if err != nil {
			fail(err)
		}
		for _, doc := range docs {
			if _, err := os.Stdout.Write(doc.Encode()); err != nil {
				fail(err)
			}
		}
		return
	}

	if *jsonF {
		// One shared driver behind -json and the ndetectd server: same
		// circuit + options → byte-identical documents (DESIGN.md §10).
		req := exp.AnalysisRequest{Kind: exp.WorstCaseAnalysis, FaultModel: *modelF, Workers: *workersF, Universes: universes}
		if rec != nil {
			req.Trace = rec
			req.Progress = rec.Progress
		}
		switch {
		case *partF > 0:
			req.Kind = exp.PartitionedAnalysis
			req.MaxInputs = *partF
		case *avgF:
			req.Kind = exp.AverageAnalysis
			req.NMax = *nmaxF
			req.K = *kF
			req.Seed = *seedF
			req.Ge11Limit = *ge11F
			if *def2F {
				req.Definition = 2
			}
		}
		doc, err := exp.AnalyzeCircuit(c, req)
		if err != nil {
			fail(err)
		}
		if _, err := os.Stdout.Write(doc.Encode()); err != nil {
			fail(err)
		}
		return
	}

	if *partF > 0 {
		analyzePartitioned(c, *partF, *workersF, *worstF, rec)
		return
	}

	uopts := ndetect.AnalyzeOptions{Workers: *workersF}
	if rec != nil {
		uopts.Progress = rec.Progress
	}
	endUniverse := beginSpan(rec, "universe")
	u, err := ndetect.BuildUniverse(c, model, uopts)
	endUniverse()
	if err != nil {
		fail(err)
	}
	stats := c.ComputeStats()
	fmt.Printf("circuit %s: %s\n", c.Name, stats)
	if model.ID() != fault.DefaultModelID {
		// The default model's output predates the registry and stays byte
		// identical; non-default models announce themselves.
		fmt.Printf("fault model: %s\n", model.ID())
	}
	fmt.Printf("targets |F| = %d %s (%d detectable)\n",
		len(u.Targets), model.Provider(fault.TargetSet).Label(), u.DetectableTargets())
	fmt.Printf("untargeted |G| = %d %s\n\n", len(u.Untargeted), model.Provider(fault.UntargetedSet).Label())

	endWorst := beginSpan(rec, "worstcase")
	wc := ndetect.WorstCaseWorkers(&u.Universe, *workersF)
	endWorst()
	fmt.Println("worst-case analysis (Section 2):")
	for _, n := range report.NMinColumns {
		fmt.Printf("  nmin(g) ≤ %-3d : %6.2f%% of G guaranteed by any %d-detection test set\n",
			n, 100*wc.CoverageAt(n), n)
	}
	for _, n := range report.Table3Columns {
		cnt := wc.CountAtLeast(n)
		fmt.Printf("  nmin(g) ≥ %-3d : %d faults (%.2f%%)\n", n, cnt, pct(cnt, len(u.Untargeted)))
	}
	unbounded := wc.CountAtLeast(ndetect.Unbounded)
	if unbounded > 0 {
		fmt.Printf("  no guarantee   : %d faults (no target fault's tests overlap theirs)\n", unbounded)
	}
	fmt.Printf("  largest finite nmin: %d\n\n", wc.MaxFinite())

	if *worstF > 0 {
		printWorst(u, wc, *worstF)
	}

	if *histF > 0 {
		values, counts := wc.Histogram(*histF)
		fmt.Println(report.FormatFigure2(c.Name, *histF, values, counts, unbounded))
	}

	if *avgF {
		runAverage(u, wc, *kF, *nmaxF, *seedF, *def2F, *workersF, rec)
	}
}

// beginSpan opens a named span on rec, tolerating a nil recorder (the
// untraced run) with a no-op end.
func beginSpan(rec *obs.Recorder, name string) func() {
	if rec == nil {
		return func() {}
	}
	return rec.Begin(name)
}

func loadCircuit(benchName, netFile, kissFile, format string, twoLevel bool) (*circuit.Circuit, error) {
	sources := 0
	for _, s := range []string{benchName, netFile, kissFile} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("specify exactly one of -bench, -netlist, -kiss2 (see -h)")
	}
	switch {
	case benchName != "":
		b, ok := bench.ByName(benchName)
		if !ok {
			// Fall back to the embedded ISCAS .bench samples (c17, s27, w64).
			if c, err := circuit.EmbeddedBench(benchName); err == nil {
				return c, nil
			}
			return nil, fmt.Errorf("unknown benchmark %q; known: %s %s", benchName,
				strings.Join(bench.Names(), " "), strings.Join(circuit.EmbeddedBenchNames(), " "))
		}
		opts := bench.DefaultOptions()
		if twoLevel {
			opts.MultiLevel = false
		}
		r, err := b.Synthesize(opts)
		if err != nil {
			return nil, err
		}
		return r.Circuit, nil
	case netFile != "":
		f, err := os.Open(netFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		switch format {
		case "net", "":
			return circuit.Parse(f)
		case "bench":
			return circuit.ParseBench(strings.TrimSuffix(filepath.Base(netFile), ".bench"), f)
		default:
			return nil, fmt.Errorf("unknown -format %q (want net or bench)", format)
		}
	default:
		f, err := os.Open(kissFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		m, err := kiss.Parse(kissFile, f)
		if err != nil {
			return nil, err
		}
		opts := synth.Options{MultiLevel: !twoLevel, MaxFanin: 4}
		r, err := synth.Synthesize(m, opts)
		if err != nil {
			return nil, err
		}
		return r.Circuit, nil
	}
}

func printWorst(u *ndetect.CircuitUniverse, wc *ndetect.WorstCaseResult, n int) {
	type hard struct {
		j, nmin int
	}
	var hs []hard
	for j, v := range wc.NMin {
		hs = append(hs, hard{j, v})
	}
	for i := 1; i < len(hs); i++ {
		for k := i; k > 0 && hs[k].nmin > hs[k-1].nmin; k-- {
			hs[k], hs[k-1] = hs[k-1], hs[k]
		}
	}
	if n > len(hs) {
		n = len(hs)
	}
	fmt.Printf("hardest %d untargeted faults:\n", n)
	for _, h := range hs[:n] {
		nm := fmt.Sprint(h.nmin)
		if h.nmin == ndetect.Unbounded {
			nm = "∞"
		}
		fmt.Printf("  %-28s nmin = %-6s |T(g)| = %d\n",
			u.Untargeted[h.j].Name, nm, u.Untargeted[h.j].T.Count())
	}
	fmt.Println()
}

func runAverage(u *ndetect.CircuitUniverse, wc *ndetect.WorstCaseResult, k, nmax int, seed int64, def2 bool, workers int, rec *obs.Recorder) {
	idx := wc.IndicesAtLeast(nmax + 1)
	if len(idx) == 0 {
		fmt.Printf("average-case analysis: every untargeted fault is guaranteed at n ≤ %d; nothing to estimate\n", nmax)
		return
	}
	sub := u.SubsetUntargeted(idx)
	opts := ndetect.Procedure1Options{NMax: nmax, K: k, Seed: seed, Workers: workers}
	if rec != nil {
		opts.Progress = func(done, total int) { rec.Progress("procedure1", done, total) }
	}
	label := "Definition 1"
	if def2 {
		if !u.Model.Def2Capable() {
			fail(fmt.Errorf("-def2 requires single stuck-at targets, which fault model %s does not have", u.Model.ID()))
		}
		opts.Definition = ndetect.Def2
		opts.Checker = ndetect.NewCircuitCheckerFor(u)
		label = "Definition 2"
	}
	endP1 := beginSpan(rec, "procedure1")
	res, err := ndetect.Procedure1(sub, opts)
	endP1()
	if err != nil {
		fail(err)
	}
	fmt.Printf("average-case analysis (%s, K=%d) over the %d faults with nmin > %d:\n",
		label, k, len(idx), nmax)
	counts := res.ThresholdCounts(nmax)
	for i, th := range report.Thresholds {
		fmt.Printf("  p(%d,g) ≥ %.1f : %d faults\n", nmax, th, counts[i])
	}
	minP, at := res.MinP(nmax)
	fmt.Printf("  lowest p(%d,g) = %.3f (%s)\n", nmax, minP, sub.Untargeted[at].Name)
	fmt.Printf("  expected escapes from an arbitrary %d-detection test set: %.2f faults\n",
		nmax, res.ExpectedEscapes(nmax))
	fmt.Printf("  mean %d-detection test set size: %.1f vectors\n", nmax, res.MeanSetSize(nmax))
}

// analyzePartitioned runs the end-to-end partitioned pipeline (Split →
// per-part worst-case analysis → MergeNMin) and prints per-part stats plus
// the merged nmin table. Output is deterministic for every -workers value:
// parts print in Split order and the merged table iterates sorted names.
func analyzePartitioned(c *circuit.Circuit, maxIn, workers, worst int, rec *obs.Recorder) {
	fmt.Printf("circuit %s: %s\n", c.Name, c.ComputeStats())
	popts := partition.Options{MaxInputs: maxIn}
	if rec != nil {
		popts.Progress = func(done, total int) { rec.Progress("parts", done, total) }
	}
	endParts := beginSpan(rec, "partition")
	res, err := partition.AnalyzeParts(c, popts, workers)
	endParts()
	if err != nil {
		fail(err)
	}
	fmt.Printf("partitioned into %d output-cone parts (input limit %d):\n", len(res.Parts), maxIn)
	for i, a := range res.Parts {
		fmt.Printf("  part %d: outputs %v, %d inputs (|U| = %d), %d gates, |F| = %d (%d detectable), |G| = %d, coverage at n=10: %.2f%%\n",
			i, a.Part.Outputs, a.Stats.Inputs, a.Stats.VectorSpaceSize, a.Stats.Gates,
			a.Targets, a.DetectableTargets, a.Untargeted, 100*a.CoverageAt(10))
	}

	fmt.Printf("\nmerged worst-case table over %d distinct bridging faults (per-part bounds, Section 4):\n", len(res.Merged))
	for _, n := range report.NMinColumns {
		fmt.Printf("  nmin(g) ≤ %-3d : %6.2f%% guaranteed by any %d-detection test set (within some part)\n",
			n, 100*res.MergedCoverageAt(n), n)
	}
	for _, n := range report.Table3Columns {
		cnt := res.MergedCountAtLeast(n)
		fmt.Printf("  nmin(g) ≥ %-3d : %d faults (%.2f%%)\n", n, cnt, pct(cnt, len(res.Merged)))
	}
	if unbounded := res.MergedCountAtLeast(ndetect.Unbounded); unbounded > 0 {
		fmt.Printf("  no guarantee   : %d faults (undetectable through every part that sees them)\n", unbounded)
	}
	fmt.Printf("  largest finite nmin: %d\n", res.MergedMaxFinite())

	if worst > 0 {
		names := res.MergedNames()
		sort.SliceStable(names, func(a, b int) bool {
			return res.Merged[names[a]] > res.Merged[names[b]]
		})
		if worst > len(names) {
			worst = len(names)
		}
		fmt.Printf("\nhardest %d bridging faults:\n", worst)
		for _, g := range names[:worst] {
			nm := fmt.Sprint(res.Merged[g])
			if res.Merged[g] == ndetect.Unbounded {
				nm = "∞"
			}
			fmt.Printf("  %-28s nmin = %s\n", g, nm)
		}
	}
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// flushProfiles stops the CPU profile and writes the heap profile at most
// once; fail() invokes it so profiles survive error exits.
var flushProfiles func()

// writeMemProfile records the live heap at exit — with the streaming engine
// the profile should show per-fault result bitsets and block scratch, never
// per-node universes.
func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	runtime.GC() // materialize up-to-date allocation statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ndetect:", err)
	if flushProfiles != nil {
		flushProfiles()
	}
	os.Exit(1)
}
