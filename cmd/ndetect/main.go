// Command ndetect analyses one circuit: it builds the paper's fault
// universes (collapsed stuck-at targets, four-way bridging untargeted
// faults), runs the worst-case nmin analysis and optionally the
// average-case Procedure 1 estimate, and prints a summary.
//
// The circuit comes from one of:
//
//	-bench NAME     an embedded benchmark (see -list)
//	-netlist FILE   a text netlist (circuit/input/output/gate statements)
//	-kiss2 FILE     a KISS2 FSM, synthesized first
//
// Examples:
//
//	ndetect -bench bbara
//	ndetect -bench dvram -hist 100
//	ndetect -netlist adder.net -avg -k 500
//	ndetect -kiss2 machine.kiss2 -avg
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ndetect/internal/bench"
	"ndetect/internal/circuit"
	"ndetect/internal/kiss"
	"ndetect/internal/ndetect"
	"ndetect/internal/partition"
	"ndetect/internal/report"
	"ndetect/internal/synth"
)

func main() {
	var (
		benchF   = flag.String("bench", "", "embedded benchmark name")
		netF     = flag.String("netlist", "", "netlist file")
		kissF    = flag.String("kiss2", "", "KISS2 FSM file (synthesized before analysis)")
		listF    = flag.Bool("list", false, "list embedded benchmarks and exit")
		avgF     = flag.Bool("avg", false, "also run the average-case analysis (Procedure 1)")
		def2F    = flag.Bool("def2", false, "use Definition 2 in the average-case analysis")
		kF       = flag.Int("k", 1000, "test sets per n for -avg")
		nmaxF    = flag.Int("nmax", 10, "deepest n-detection level")
		seedF    = flag.Int64("seed", 1, "RNG seed for -avg")
		histF    = flag.Int("hist", 0, "print the nmin histogram from this cutoff (0 = off)")
		worstF   = flag.Int("worst", 10, "show the hardest N untargeted faults")
		partF    = flag.Int("partition", 0, "partition into ≤N-input cones before analysis (0 = off)")
		twoLevel = flag.Bool("two-level", false, "use two-level PLA synthesis for -kiss2/-bench")
		workersF = flag.Int("workers", 0, "worker pool size for simulation, T-sets and -avg (0 = one per CPU, 1 = serial)")
	)
	flag.Parse()

	if *listF {
		for _, b := range bench.All() {
			src := "synthetic"
			if b.Handwritten {
				src = "handwritten"
			}
			fmt.Printf("%-10s %2d in, %2d out, %2d states (%s)\n", b.Name, b.Inputs, b.Outputs, b.States, src)
		}
		return
	}

	c, err := loadCircuit(*benchF, *netF, *kissF, *twoLevel)
	if err != nil {
		fail(err)
	}

	if *partF > 0 {
		analyzePartitioned(c, *partF, *workersF)
		return
	}

	u, err := ndetect.FromCircuitWorkers(c, *workersF)
	if err != nil {
		fail(err)
	}
	stats := c.ComputeStats()
	fmt.Printf("circuit %s: %s\n", c.Name, stats)
	fmt.Printf("targets |F| = %d collapsed stuck-at faults (%d detectable)\n",
		len(u.Targets), u.DetectableTargets())
	fmt.Printf("untargeted |G| = %d detectable non-feedback four-way bridging faults\n\n", len(u.Untargeted))

	wc := ndetect.WorstCase(&u.Universe)
	fmt.Println("worst-case analysis (Section 2):")
	for _, n := range report.NMinColumns {
		fmt.Printf("  nmin(g) ≤ %-3d : %6.2f%% of G guaranteed by any %d-detection test set\n",
			n, 100*wc.CoverageAt(n), n)
	}
	for _, n := range report.Table3Columns {
		cnt := wc.CountAtLeast(n)
		fmt.Printf("  nmin(g) ≥ %-3d : %d faults (%.2f%%)\n", n, cnt, pct(cnt, len(u.Untargeted)))
	}
	unbounded := wc.CountAtLeast(ndetect.Unbounded)
	if unbounded > 0 {
		fmt.Printf("  no guarantee   : %d faults (no target fault's tests overlap theirs)\n", unbounded)
	}
	fmt.Printf("  largest finite nmin: %d\n\n", wc.MaxFinite())

	if *worstF > 0 {
		printWorst(u, wc, *worstF)
	}

	if *histF > 0 {
		values, counts := wc.Histogram(*histF)
		fmt.Println(report.FormatFigure2(c.Name, *histF, values, counts, unbounded))
	}

	if *avgF {
		runAverage(u, wc, *kF, *nmaxF, *seedF, *def2F, *workersF)
	}
}

func loadCircuit(benchName, netFile, kissFile string, twoLevel bool) (*circuit.Circuit, error) {
	sources := 0
	for _, s := range []string{benchName, netFile, kissFile} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("specify exactly one of -bench, -netlist, -kiss2 (see -h)")
	}
	switch {
	case benchName != "":
		b, ok := bench.ByName(benchName)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q; known: %s", benchName, strings.Join(bench.Names(), " "))
		}
		opts := bench.DefaultOptions()
		if twoLevel {
			opts.MultiLevel = false
		}
		r, err := b.Synthesize(opts)
		if err != nil {
			return nil, err
		}
		return r.Circuit, nil
	case netFile != "":
		f, err := os.Open(netFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return circuit.Parse(f)
	default:
		f, err := os.Open(kissFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		m, err := kiss.Parse(kissFile, f)
		if err != nil {
			return nil, err
		}
		opts := synth.Options{MultiLevel: !twoLevel, MaxFanin: 4}
		r, err := synth.Synthesize(m, opts)
		if err != nil {
			return nil, err
		}
		return r.Circuit, nil
	}
}

func printWorst(u *ndetect.CircuitUniverse, wc *ndetect.WorstCaseResult, n int) {
	type hard struct {
		j, nmin int
	}
	var hs []hard
	for j, v := range wc.NMin {
		hs = append(hs, hard{j, v})
	}
	for i := 1; i < len(hs); i++ {
		for k := i; k > 0 && hs[k].nmin > hs[k-1].nmin; k-- {
			hs[k], hs[k-1] = hs[k-1], hs[k]
		}
	}
	if n > len(hs) {
		n = len(hs)
	}
	fmt.Printf("hardest %d untargeted faults:\n", n)
	for _, h := range hs[:n] {
		nm := fmt.Sprint(h.nmin)
		if h.nmin == ndetect.Unbounded {
			nm = "∞"
		}
		fmt.Printf("  %-28s nmin = %-6s |T(g)| = %d\n",
			u.Untargeted[h.j].Name, nm, u.Untargeted[h.j].T.Count())
	}
	fmt.Println()
}

func runAverage(u *ndetect.CircuitUniverse, wc *ndetect.WorstCaseResult, k, nmax int, seed int64, def2 bool, workers int) {
	idx := wc.IndicesAtLeast(nmax + 1)
	if len(idx) == 0 {
		fmt.Printf("average-case analysis: every untargeted fault is guaranteed at n ≤ %d; nothing to estimate\n", nmax)
		return
	}
	sub := u.SubsetUntargeted(idx)
	opts := ndetect.Procedure1Options{NMax: nmax, K: k, Seed: seed, Workers: workers}
	label := "Definition 1"
	if def2 {
		opts.Definition = ndetect.Def2
		opts.Checker = ndetect.NewCircuitCheckerFor(u)
		label = "Definition 2"
	}
	res, err := ndetect.Procedure1(sub, opts)
	if err != nil {
		fail(err)
	}
	fmt.Printf("average-case analysis (%s, K=%d) over the %d faults with nmin > %d:\n",
		label, k, len(idx), nmax)
	counts := res.ThresholdCounts(nmax)
	for i, th := range report.Thresholds {
		fmt.Printf("  p(%d,g) ≥ %.1f : %d faults\n", nmax, th, counts[i])
	}
	minP, at := res.MinP(nmax)
	fmt.Printf("  lowest p(%d,g) = %.3f (%s)\n", nmax, minP, sub.Untargeted[at].Name)
	fmt.Printf("  expected escapes from an arbitrary %d-detection test set: %.2f faults\n",
		nmax, res.ExpectedEscapes(nmax))
	fmt.Printf("  mean %d-detection test set size: %.1f vectors\n", nmax, res.MeanSetSize(nmax))
}

func analyzePartitioned(c *circuit.Circuit, maxIn, workers int) {
	parts, err := partition.Split(c, partition.Options{MaxInputs: maxIn})
	if err != nil {
		fail(err)
	}
	fmt.Printf("circuit %s partitioned into %d parts (input limit %d):\n", c.Name, len(parts), maxIn)
	var perPart []map[string]int
	for i, p := range parts {
		u, err := ndetect.FromCircuitWorkers(p.Circuit, workers)
		if err != nil {
			fail(err)
		}
		wc := ndetect.WorstCase(&u.Universe)
		fmt.Printf("  part %d: outputs %v, %d inputs, |G| = %d, coverage at n=10: %.2f%%\n",
			i, p.Outputs, p.Circuit.NumInputs(), len(u.Untargeted), 100*wc.CoverageAt(10))
		m := make(map[string]int, len(u.Untargeted))
		for j, g := range u.Untargeted {
			m[g.Name] = wc.NMin[j]
		}
		perPart = append(perPart, m)
	}
	merged := partition.MergeNMin(perPart)
	guaranteed := 0
	for _, v := range merged {
		if v <= 10 {
			guaranteed++
		}
	}
	fmt.Printf("merged: %d distinct bridging faults seen, %d (%.2f%%) guaranteed at n ≤ 10\n",
		len(merged), guaranteed, pct(guaranteed, len(merged)))
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ndetect:", err)
	os.Exit(1)
}
