// Command paper regenerates the evaluation of "Worst-Case and Average-Case
// Analysis of n-Detection Test Sets" (Pomeranz & Reddy, DATE 2005) on the
// embedded benchmark suite: Tables 2, 3, 5 and 6 and Figure 2.
//
// Usage:
//
//	paper [flags]
//
//	-table   which tables to produce: "2", "3", "5", "6", "all", or a
//	         comma list (default "2,3")
//	-figure2 circuit whose nmin distribution to plot (default "dvram";
//	         "" disables)
//	-circuits comma-separated circuit subset (default: all 35)
//	-k5      test sets per n for Table 5 (paper: 10000; default 1000)
//	-k6      test sets per n for Table 6 (paper: 1000; default 200)
//	-nmax    deepest n-detection level (default 10)
//	-seed    RNG seed (default 1)
//	-ge11cap cap on the nmin≥11 subset per circuit for Tables 5/6
//	         (0 = no cap; default 500)
//	-workers parallelism at every level: circuits fan out across this many
//	         goroutines and the same count drives the per-circuit simulation
//	         and Procedure 1 (0 = one per CPU; 1 = serial). Tables are
//	         identical for every value.
//	-compare also print the paper's published rows for side-by-side reading
//	-csv     emit CSV instead of formatted tables
//	-v       progress to stderr
//
// Runtime scales with k5/k6; the defaults finish in a few minutes on a
// laptop. Paper-scale statistics: -k5 10000 -k6 1000 -ge11cap 0.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ndetect/internal/bench"
	"ndetect/internal/exp"
	"ndetect/internal/report"
)

func main() {
	var (
		tableF   = flag.String("table", "2,3", `tables to produce: "2","3","5","6","all" or comma list`)
		figure2F = flag.String("figure2", "dvram", "circuit for the Figure 2 histogram (empty disables)")
		circF    = flag.String("circuits", "", "comma-separated circuit subset (default all)")
		k5F      = flag.Int("k5", 1000, "test sets per n for Table 5 (paper: 10000)")
		k6F      = flag.Int("k6", 200, "test sets per n for Table 6 (paper: 1000)")
		nmaxF    = flag.Int("nmax", 10, "deepest n-detection level")
		seedF    = flag.Int64("seed", 1, "RNG seed")
		capF     = flag.Int("ge11cap", 500, "cap on nmin≥11 subset per circuit for Tables 5/6 (0 = none)")
		workersF = flag.Int("workers", 0, "worker pool size at every level (0 = one per CPU, 1 = serial)")
		compareF = flag.Bool("compare", false, "also print the paper's published rows")
		csvF     = flag.Bool("csv", false, "emit CSV")
		verboseF = flag.Bool("v", false, "progress to stderr")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, t := range strings.Split(*tableF, ",") {
		t = strings.TrimSpace(t)
		if t == "all" {
			want["2"], want["3"], want["5"], want["6"] = true, true, true, true
			continue
		}
		if t != "" {
			want[t] = true
		}
	}

	cfg := exp.Config{
		NMax:      *nmaxF,
		K5:        *k5F,
		K6:        *k6F,
		Seed:      *seedF,
		Ge11Limit: *capF,
		Workers:   *workersF,
	}
	if *circF != "" {
		for _, c := range strings.Split(*circF, ",") {
			c = strings.TrimSpace(c)
			if _, ok := bench.ByName(c); !ok {
				fmt.Fprintf(os.Stderr, "unknown circuit %q; known: %s\n", c, strings.Join(bench.Names(), " "))
				os.Exit(2)
			}
			cfg.Circuits = append(cfg.Circuits, c)
		}
	}

	fig2 := *figure2F
	if fig2 != "" {
		if _, ok := bench.ByName(fig2); !ok {
			fmt.Fprintf(os.Stderr, "unknown -figure2 circuit %q\n", fig2)
			os.Exit(2)
		}
		if len(cfg.Circuits) > 0 && !contains(cfg.Circuits, fig2) {
			fig2 = "" // subset excludes it
		}
	}

	start := time.Now()
	var observe func(string)
	if *verboseF {
		observe = func(name string) {
			fmt.Fprintf(os.Stderr, "[%6.1fs] %s done\n", time.Since(start).Seconds(), name)
		}
	}

	res, err := exp.RunAll(cfg, fig2, want["5"], want["6"], observe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	if want["2"] {
		if *csvF {
			fmt.Print(report.CSVTable2(res.Table2))
		} else {
			fmt.Println(report.FormatTable2(res.Table2))
		}
		if *compareF {
			fmt.Println(paperTable2())
		}
	}
	if want["3"] {
		if *csvF {
			fmt.Print(report.CSVTable3(res.Table3))
		} else {
			fmt.Println(report.FormatTable3(res.Table3))
		}
		if *compareF {
			fmt.Println(paperTable3())
		}
	}
	if fig2 != "" {
		fmt.Println(res.Figure2)
	}
	if want["5"] {
		if *csvF {
			fmt.Print(report.CSVTable5(res.Table5))
		} else {
			fmt.Println(report.FormatTable5(res.Table5))
		}
		if *compareF {
			fmt.Println(paperTable5())
		}
	}
	if want["6"] {
		fmt.Println(report.FormatTable6(res.Table6))
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// paperTable2 renders the published Table 2 for comparison.
func paperTable2() string {
	var rows []report.Table2Row
	for _, b := range bench.All() {
		p, ok := bench.PaperTable2[b.Name]
		if !ok {
			continue
		}
		r := report.Table2Row{Circuit: b.Name, Faults: p.Faults}
		copy(r.Pct[:], p.Pct[:])
		rows = append(rows, r)
	}
	return "[paper] " + report.FormatTable2(rows)
}

func paperTable3() string {
	var rows []report.Table3Row
	for _, b := range bench.All() {
		p, ok := bench.PaperTable3[b.Name]
		if !ok {
			continue
		}
		rows = append(rows, report.Table3Row{
			Circuit: b.Name, Faults: p.Faults, Ge100: p.Ge100, Ge20: p.Ge20, Ge11: p.Ge11,
		})
	}
	return "[paper] " + report.FormatTable3(rows)
}

func paperTable5() string {
	var rows []report.Table5Row
	for _, name := range bench.Table5Circuits {
		p, ok := bench.PaperTable5[name]
		if !ok {
			continue
		}
		r := report.Table5Row{Circuit: name, Faults: p.Faults}
		for i, c := range p.Counts {
			if c < 0 {
				r.Counts[i] = p.Faults // blank cell: all faults above threshold
			} else {
				r.Counts[i] = c
			}
		}
		rows = append(rows, r)
	}
	return "[paper] " + report.FormatTable5(rows)
}
