// Command ndetectlint enforces the repo's determinism and byte-identity
// contract (DESIGN.md §13) with the analyzers in internal/lint.
//
// Two modes:
//
//	go vet -vettool=$PWD/ndetectlint ./...   # vettool backend (CI)
//	ndetectlint ./...                        # standalone driver
//
// As a vettool it speaks go vet's unitchecker protocol: go vet probes it
// with -V=full and -flags, then invokes it once per package with a
// .cfg file describing the sources and compiled dependencies. Standalone
// it loads packages itself via `go list -export` and prints the same
// findings.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"strings"

	"ndetect/internal/lint"
)

func main() {
	args := os.Args[1:]

	// go vet capability probes. -V=full must print a version line whose
	// second field is "version"; with "devel" the last field must be a
	// buildID. Hash the executable so the vet cache invalidates whenever
	// the tool is rebuilt with different analyzers.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			fmt.Printf("ndetectlint version devel buildID=%s\n", selfID())
			return
		case a == "-flags" || a == "--flags":
			// No analyzer flags: the suite always runs whole.
			fmt.Println("[]")
			return
		}
	}

	// Vettool mode: a single vet config file argument.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(lint.Vet(args[0], lint.Analyzers(), os.Stderr))
	}

	// Standalone mode: package patterns, cwd-relative.
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.Run(".", patterns, lint.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "ndetectlint: %v\n", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(lint.VetExitFindings)
	}
}

// selfID returns a content hash of the running executable, so the
// version string (and with it go vet's action cache) changes on rebuild.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}
